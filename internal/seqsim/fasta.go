package seqsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"evotree/internal/matrix"
)

// FASTA I/O: the interchange format biologists would feed the system with
// real sequences. ReadFASTA plus MatrixFromSequences is the path from a
// sequence file to the distance matrix the tree builders consume.

// Record is one FASTA entry.
type Record struct {
	Name string
	Seq  []byte
}

// WriteFASTA writes records in FASTA format, wrapping sequence lines at 70
// columns.
func WriteFASTA(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		for off := 0; off < len(r.Seq); off += 70 {
			end := off + 70
			if end > len(r.Seq) {
				end = len(r.Seq)
			}
			if _, err := bw.Write(r.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA records. Sequence characters are upper-cased;
// whitespace inside sequences is ignored. Only A, C, G, T and N are
// accepted (N is kept as-is and never matches in Hamming comparisons by
// convention of the callers).
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			name := strings.TrimSpace(text[1:])
			if name == "" {
				return nil, fmt.Errorf("seqsim: fasta line %d: empty record name", line)
			}
			out = append(out, Record{Name: name})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seqsim: fasta line %d: sequence before first header", line)
		}
		for _, c := range []byte(strings.ToUpper(text)) {
			switch c {
			case 'A', 'C', 'G', 'T', 'N':
				cur.Seq = append(cur.Seq, c)
			case ' ', '\t':
			default:
				return nil, fmt.Errorf("seqsim: fasta line %d: invalid base %q", line, c)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("seqsim: empty fasta input")
	}
	return out, nil
}

// MatrixFromSequences builds the Hamming distance matrix over equal-length
// sequences. Sites where either sequence has an N are skipped (treated as
// missing data).
func MatrixFromSequences(records []Record) (*matrix.Matrix, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("seqsim: no sequences")
	}
	want := len(records[0].Seq)
	names := make([]string, len(records))
	for i, r := range records {
		if len(r.Seq) != want {
			return nil, fmt.Errorf("seqsim: sequence %q has length %d, want %d (align first)",
				r.Name, len(r.Seq), want)
		}
		names[i] = r.Name
	}
	m, err := matrix.NewWithNames(names)
	if err != nil {
		return nil, err
	}
	for i := range records {
		for j := i + 1; j < len(records); j++ {
			d := 0
			a, b := records[i].Seq, records[j].Seq
			for k := range a {
				if a[k] == 'N' || b[k] == 'N' {
					continue
				}
				if a[k] != b[k] {
					d++
				}
			}
			m.Set(i, j, float64(d))
		}
	}
	return m, nil
}

// Records converts a dataset's sequences into FASTA records named by the
// matrix species names.
func (d *Dataset) Records() []Record {
	out := make([]Record, len(d.Sequences))
	for i, s := range d.Sequences {
		out[i] = Record{Name: d.Matrix.Name(i), Seq: s}
	}
	return out
}
