// Package seqsim synthesizes the Human Mitochondrial DNA workloads of the
// papers. We do not ship the authors' HMDNA distance matrices, so the
// package simulates the process that produced them: DNA sequences evolving
// under a Jukes–Cantor substitution model with a strict molecular clock
// (the very assumption behind ultrametric trees) along a random coalescent
// tree, followed by pairwise Hamming-distance computation. The resulting
// integer matrices are metrics, nearly ultrametric, and exercise the
// branch-and-bound and the compact-set technique in the same difficulty
// regime the paper reports.
package seqsim

import (
	"fmt"
	"math"
	"math/rand"

	"evotree/internal/matrix"
	"evotree/internal/tree"
)

// Alphabet is the DNA alphabet used by the simulator.
var Alphabet = []byte("ACGT")

// Params configure a simulation.
type Params struct {
	Species int     // number of taxa (the papers use 12..38)
	SeqLen  int     // sites per sequence; default 600 (mtDNA control-region scale)
	Rate    float64 // substitutions per site per unit height; default 0.4
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.SeqLen == 0 {
		p.SeqLen = 600
	}
	if p.Rate == 0 {
		p.Rate = 0.4
	}
	return p
}

// Dataset is one simulated mtDNA instance.
type Dataset struct {
	Matrix    *matrix.Matrix // pairwise Hamming distances (integer metric)
	Sequences [][]byte       // the leaf sequences, indexed by species
	TrueTree  *tree.Tree     // the clock tree the sequences evolved on
}

// Generate simulates one dataset.
func Generate(rng *rand.Rand, p Params) (*Dataset, error) {
	p = p.withDefaults()
	if p.Species < 1 {
		return nil, fmt.Errorf("seqsim: need at least 1 species, got %d", p.Species)
	}
	if p.SeqLen < 1 {
		return nil, fmt.Errorf("seqsim: non-positive sequence length %d", p.SeqLen)
	}
	t := CoalescentTree(rng, p.Species)
	seqs := evolve(rng, t, p)
	names := make([]string, p.Species)
	for i := range names {
		names[i] = fmt.Sprintf("mt%02d", i+1)
	}
	m, err := matrix.NewWithNames(names)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.Species; i++ {
		for j := i + 1; j < p.Species; j++ {
			m.Set(i, j, float64(Hamming(seqs[i], seqs[j])))
		}
	}
	return &Dataset{Matrix: m, Sequences: seqs, TrueTree: t}, nil
}

// CoalescentTree grows a random ultrametric (clock) tree over n species:
// starting from n lineages at height 0, repeatedly join two uniformly
// chosen lineages at a height that increases by an exponential waiting time
// scaled by the number of remaining pairs — the standard coalescent.
func CoalescentTree(rng *rand.Rand, n int) *tree.Tree {
	lineages := make([]*tree.Tree, n)
	for i := 0; i < n; i++ {
		lineages[i] = tree.New(i)
	}
	h := 0.0
	for len(lineages) > 1 {
		k := float64(len(lineages))
		h += rng.ExpFloat64() / (k * (k - 1) / 2)
		i := rng.Intn(len(lineages))
		j := rng.Intn(len(lineages) - 1)
		if j >= i {
			j++
		}
		joined := tree.Join(lineages[i], lineages[j], h)
		// Remove j first (the higher index may shift).
		if i < j {
			i, j = j, i
		}
		lineages[i] = lineages[len(lineages)-1]
		lineages = lineages[:len(lineages)-1]
		if j == len(lineages) {
			j = i
		}
		lineages[j] = joined
	}
	return lineages[0]
}

// evolve runs Jukes–Cantor substitution from a random root sequence down
// every edge of the clock tree and returns the leaf sequences.
func evolve(rng *rand.Rand, t *tree.Tree, p Params) [][]byte {
	seqs := make([][]byte, p.Species)
	root := make([]byte, p.SeqLen)
	for i := range root {
		root[i] = Alphabet[rng.Intn(4)]
	}
	var walk func(id int, seq []byte)
	walk = func(id int, seq []byte) {
		n := t.Nodes[id]
		if n.Species >= 0 {
			seqs[n.Species] = seq
			return
		}
		for _, ch := range []int{n.Left, n.Right} {
			ell := (n.Height - t.Nodes[ch].Height) * p.Rate
			child := mutate(rng, seq, ell)
			walk(ch, child)
		}
	}
	walk(t.Root, root)
	return seqs
}

// mutate applies Jukes–Cantor substitution along a branch with expected ell
// substitutions per site: each site changes with probability
// ¾(1 − e^(−4ℓ/3)), uniformly to one of the three other bases.
func mutate(rng *rand.Rand, seq []byte, ell float64) []byte {
	pChange := 0.75 * (1 - math.Exp(-4*ell/3))
	out := append([]byte(nil), seq...)
	for i := range out {
		if rng.Float64() < pChange {
			b := Alphabet[rng.Intn(3)]
			if b == out[i] {
				b = Alphabet[3]
			}
			out[i] = b
		}
	}
	return out
}

// Hamming returns the number of differing sites between equal-length
// sequences; it panics on a length mismatch.
func Hamming(a, b []byte) int {
	if len(a) != len(b) {
		panic("seqsim: Hamming over sequences of different length")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// JukesCantor converts an observed per-site difference fraction p into the
// evolutionary distance estimate −¾·ln(1 − 4p/3). It returns +Inf when the
// fraction saturates (p ≥ ¾).
func JukesCantor(p float64) float64 {
	if p >= 0.75 {
		return math.Inf(1)
	}
	return -0.75 * math.Log(1-4*p/3)
}

// CorrectedMatrix maps a Hamming matrix over sequences of length seqLen to
// Jukes–Cantor distances scaled back to the same magnitude (×seqLen). The
// result is repaired with a metric closure since the correction can bend
// the triangle inequality. Saturated entries are clamped to the largest
// finite corrected value.
func CorrectedMatrix(m *matrix.Matrix, seqLen int) *matrix.Matrix {
	n := m.Len()
	out := m.Clone()
	maxFinite := 0.0
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jc := JukesCantor(m.At(i, j) / float64(seqLen))
			vals[i][j] = jc
			if !math.IsInf(jc, 1) && jc > maxFinite {
				maxFinite = jc
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := vals[i][j]
			if math.IsInf(v, 1) {
				v = maxFinite
			}
			out.Set(i, j, v*float64(seqLen))
		}
	}
	// The JC transform is concave, which can violate the triangle
	// inequality on noisy data; restore it by shortest-path closure.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			rows[i][j] = out.At(i, j)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := rows[i][k] + rows[k][j]; v < rows[i][j] {
					rows[i][j] = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Set(i, j, rows[i][j])
		}
	}
	return out
}

// Batch generates count independent datasets with the same parameters,
// advancing the RNG between them — the papers use 10–20 instances per
// species count to smooth out data dependence.
func Batch(rng *rand.Rand, p Params, count int) ([]*Dataset, error) {
	out := make([]*Dataset, 0, count)
	for i := 0; i < count; i++ {
		ds, err := Generate(rng, p)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}
