package seqsim

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestK80ProbsLimits(t *testing.T) {
	// Zero branch: no change.
	ts, tv := k80Probs(0, 4)
	if ts != 0 || tv != 0 {
		t.Fatalf("zero branch: %g %g", ts, tv)
	}
	// Long branch: saturates to uniform (¼ each target).
	ts, tv = k80Probs(100, 4)
	if math.Abs(ts-0.25) > 1e-6 || math.Abs(tv-0.25) > 1e-6 {
		t.Fatalf("saturation: ts %g tv %g", ts, tv)
	}
	// kappa = 1 must equal Jukes–Cantor: total change prob
	// ¾(1−e^(−4ℓ/3)) and transitions = each transversion direction.
	for _, ell := range []float64{0.01, 0.1, 0.5, 1} {
		ts, tv = k80Probs(ell, 1)
		if math.Abs(ts-tv) > 1e-9 {
			t.Fatalf("kappa=1 must be symmetric: ts %g tv %g", ts, tv)
		}
		jc := 0.75 * (1 - math.Exp(-4*ell/3))
		if got := ts + 2*tv; math.Abs(got-jc) > 1e-9 {
			t.Fatalf("kappa=1 total %g, JC %g at ell=%g", got, jc, ell)
		}
	}
	// Total substitution probability is increasing in ell.
	prev := 0.0
	for _, ell := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		ts, tv = k80Probs(ell, 4)
		tot := ts + 2*tv
		if tot <= prev {
			t.Fatalf("total change prob not increasing at ell=%g", ell)
		}
		prev = tot
	}
}

func TestK80TransitionBias(t *testing.T) {
	// With kappa >> 1 transitions must dominate transversions among
	// observed differences.
	rng := rand.New(rand.NewSource(70))
	ds, err := GenerateK80(rng, K80Params{
		Params: Params{Species: 10, SeqLen: 4000, Rate: 0.3},
		Kappa:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsTot, tvTot := 0, 0
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			ts, tv := TsTvCounts(ds.Sequences[i], ds.Sequences[j])
			tsTot += ts
			tvTot += tv
		}
	}
	if tsTot <= tvTot {
		t.Fatalf("kappa=8 should favor transitions: ts %d, tv %d", tsTot, tvTot)
	}
	if err := ds.Matrix.Check(); err != nil {
		t.Fatal(err)
	}
	if !ds.Matrix.IsMetric() {
		t.Fatal("K80 Hamming matrix must be metric")
	}
}

func TestK2PDistance(t *testing.T) {
	if d := K2PDistance(0, 0); d != 0 {
		t.Fatalf("K2P(0,0) = %g", d)
	}
	if d := K2PDistance(0.5, 0.2); !math.IsInf(d, 1) {
		t.Fatalf("saturated K2P = %g", d)
	}
	// Must reduce to a sensible positive estimate for small fractions and
	// exceed the raw p-distance.
	if d := K2PDistance(0.08, 0.04); d <= 0.12 {
		t.Fatalf("K2P(0.08,0.04) = %g, want > raw 0.12", d)
	}
}

func TestTsTvCounts(t *testing.T) {
	ts, tv := TsTvCounts([]byte("AGCT"), []byte("GACT"))
	if ts != 2 || tv != 0 {
		t.Fatalf("ts %d tv %d, want 2 0", ts, tv)
	}
	ts, tv = TsTvCounts([]byte("AC"), []byte("CA"))
	if ts != 0 || tv != 2 {
		t.Fatalf("ts %d tv %d, want 0 2", ts, tv)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	TsTvCounts([]byte("A"), []byte("AC"))
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds, err := Generate(rng, Params{Species: 5, SeqLen: 153})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, ds.Records()); err != nil {
		t.Fatal(err)
	}
	records, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("%d records", len(records))
	}
	for i, r := range records {
		if r.Name != ds.Matrix.Name(i) {
			t.Fatalf("record %d name %q", i, r.Name)
		}
		if !bytes.Equal(r.Seq, ds.Sequences[i]) {
			t.Fatalf("record %d sequence mismatch", i)
		}
	}
	// The matrix built from the FASTA round trip equals the original.
	m, err := MatrixFromSequences(records)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != ds.Matrix.String() {
		t.Fatal("matrix mismatch after FASTA round trip")
	}
}

func TestReadFASTAHandlesNAndErrors(t *testing.T) {
	records, err := ReadFASTA(strings.NewReader(">a\nACGN\n>b\nAC GT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(records[0].Seq) != "ACGN" || string(records[1].Seq) != "ACGT" {
		t.Fatalf("records = %+v", records)
	}
	// N sites are skipped in distances.
	m, err := MatrixFromSequences(records)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 0 {
		t.Fatalf("N-masked distance = %g, want 0", m.At(0, 1))
	}
	for _, bad := range []string{
		"",           // empty
		"ACGT\n",     // sequence before header
		">\nACGT\n",  // empty name
		">a\nACGX\n", // invalid base
	} {
		if _, err := ReadFASTA(strings.NewReader(bad)); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
	// Length mismatch is rejected at matrix construction.
	recs := []Record{{Name: "a", Seq: []byte("ACG")}, {Name: "b", Seq: []byte("AC")}}
	if _, err := MatrixFromSequences(recs); err == nil {
		t.Error("want error for unequal lengths")
	}
	if _, err := MatrixFromSequences(nil); err == nil {
		t.Error("want error for no sequences")
	}
}
