// Quickstart: build a minimum ultrametric tree from a small distance
// matrix, exactly and with the compact-set technique, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evotree/internal/bb"
	"evotree/internal/core"
	"evotree/internal/matrix"
)

func main() {
	// Distances among six taxa (the worked example of the paper's
	// compact-set section, made metric).
	input := `6
chimp   0 3 1 6 4.5 6.2
bonobo  3 0 3.5 6.4 4.6 6.5
human   1 3.5 0 6.6 4 6.7
gorilla 6 6.4 6.6 0 5.5 2
orang   4.5 4.6 4 5.5 0 5
gibbon  6.2 6.5 6.7 2 5 0
`
	m, err := matrix.ParseString(input)
	if err != nil {
		log.Fatal(err)
	}

	// 1. The exact Minimum Ultrametric Tree via branch-and-bound.
	exact, err := bb.Solve(m, bb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact MUT cost:      %.4f\n", exact.Cost)
	fmt.Printf("exact MUT:           %s\n", exact.Tree.Newick())
	fmt.Printf("expanded BBT nodes:  %d (of %.0f possible topologies)\n",
		exact.Stats.Expanded, bb.CountTopologies(m.Len()))

	// 2. The compact-set decomposition (the paper's fast technique).
	res, err := core.Construct(m, core.DefaultOptions(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompact sets:        %v\n", res.CompactSets)
	fmt.Printf("decomposed cost:     %.4f (gap %.2f%%)\n",
		res.Cost, 100*core.CostGap(res.Cost, exact.Cost))
	fmt.Printf("decomposed tree:     %s\n", res.Tree.Newick())

	// 3. The headline guarantee: every compact set is a clade.
	if err := core.RelationPreserved(res.Tree, res.CompactSets); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevery compact set appears as a clade: relations preserved ✓")
}
