// compactsets: walk through the compact-set machinery itself — the MST,
// the detection algorithm, the laminar hierarchy, and the reduced
// (maximum) matrices — on the paper's own worked example.
//
//	go run ./examples/compactsets
package main

import (
	"fmt"
	"log"
	"os"

	"evotree/internal/compact"
	"evotree/internal/graph"
	"evotree/internal/matrix"
)

func main() {
	// The six-vertex example of Section 3.1 (figures 3–5), made metric:
	// MST edge order (1,3) (4,6) (1,2) (3,5) (5,6); compact sets
	// (1,3) (4,6) (1,2,3) (1,2,3,5).
	input := `6
v1 0 3 1 6 4.5 6.2
v2 3 0 3.5 6.4 4.6 6.5
v3 1 3.5 0 6.6 4 6.7
v4 6 6.4 6.6 0 5.5 2
v5 4.5 4.6 4 5.5 0 5
v6 6.2 6.5 6.7 2 5 0
`
	m, err := matrix.ParseString(input)
	if err != nil {
		log.Fatal(err)
	}

	mst, err := graph.MST(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum spanning tree (Kruskal, ascending):")
	for _, e := range mst {
		fmt.Printf("  (%s, %s)  weight %g\n", m.Name(e.U), m.Name(e.V), e.Weight)
	}

	sets, err := compact.Find(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompact sets (Max inside < Min leaving):")
	for _, s := range sets {
		fmt.Printf("  %v  compact=%v\n", names(m, s), compact.IsCompact(m, s))
	}

	hier, _, err := compact.BuildHierarchy(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlaminar hierarchy: %s\n", hier)
	fmt.Printf("subproblems to solve: %d\n\n", hier.Count())

	// Show the reduced matrix at each internal node.
	var show func(h *compact.Hierarchy)
	show = func(h *compact.Hierarchy) {
		if h.IsLeaf() {
			return
		}
		small, kids, err := compact.Reduce(m, h, compact.Maximum)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("maximum matrix over group %v (%d children):\n", names(m, h.Members), len(kids))
		if err := small.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		for _, ch := range kids {
			show(ch)
		}
	}
	show(hier)
}

func names(m *matrix.Matrix, idx []int) []string {
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = m.Name(v)
	}
	return out
}
