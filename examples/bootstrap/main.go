// bootstrap: judge how much of a constructed tree to trust — simulate an
// mtDNA alignment, build the compact-set tree, and bootstrap the alignment
// columns to get per-clade support values (Felsenstein's method).
//
//	go run ./examples/bootstrap [-n 12] [-reps 100] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"evotree"
	"evotree/internal/seqsim"
)

func main() {
	n := flag.Int("n", 12, "species")
	reps := flag.Int("reps", 100, "bootstrap replicates")
	seed := flag.Int64("seed", 5, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	ds, err := seqsim.Generate(rng, seqsim.Params{Species: *n, SeqLen: 300, Rate: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d sequences × %d sites\n", *n, 300)

	build := func(m *evotree.Matrix) (*evotree.Tree, error) {
		res, err := evotree.Construct(m, evotree.DefaultOptions(2))
		if err != nil {
			return nil, err
		}
		return res.Tree, nil
	}
	res, err := evotree.Bootstrap(ds.Records(), build, evotree.BootstrapOptions{
		Replicates: *reps, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bootstrap: %d replicates, mean clade support %.0f%%\n",
		res.Replicates, 100*res.MeanSupport())
	fmt.Println("\nannotated tree (internal labels = bootstrap %):")
	fmt.Println(res.Annotated())

	// Clades sorted by support, weakest first: the parts of the phylogeny
	// a biologist should doubt.
	fmt.Println("\nweakest clades:")
	type cs struct {
		clade string
		sup   float64
	}
	var all []cs
	for c, s := range res.Support {
		all = append(all, cs{c, s})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].sup < all[i].sup {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i, c := range all {
		if i == 5 {
			break
		}
		fmt.Printf("  {%s}: %.0f%%\n", c.clade, 100*c.sup)
	}
}
