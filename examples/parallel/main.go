// parallel: the companion paper's experiment in miniature — run the
// parallel branch-and-bound with growing worker counts on one instance,
// then replay the same search on the virtual 16-node cluster and report
// the deterministic speedup (super-linear when a worker finds a good bound
// early).
//
//	go run ./examples/parallel [-n 18] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"evotree/internal/cluster"
	"evotree/internal/pbb"
	"evotree/internal/seqsim"
)

func main() {
	n := flag.Int("n", 18, "species")
	seed := flag.Int64("seed", 11, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	ds, err := seqsim.Generate(rng, seqsim.Params{Species: *n})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Matrix

	fmt.Printf("real goroutine engine on %d species:\n", *n)
	fmt.Printf("%8s %12s %12s %10s %10s\n", "workers", "cost", "expanded", "pool-gets", "pool-puts")
	for _, w := range []int{1, 2, 4, 8} {
		res, err := pbb.Solve(m, pbb.DefaultOptions(w))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12.1f %12d %10d %10d\n",
			w, res.Cost, res.Stats.Expanded, res.PoolGets, res.PoolPuts)
	}

	fmt.Printf("\nvirtual cluster (deterministic discrete-event model):\n")
	fmt.Printf("%8s %14s %12s %10s %12s\n", "nodes", "makespan", "expanded", "messages", "utilisation")
	base := cluster.ClusterConfig(1)
	var t1 float64
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.Nodes = nodes
		res, err := cluster.Simulate(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if nodes == 1 {
			t1 = res.Makespan
		}
		fmt.Printf("%8d %14.1f %12d %10d %11.0f%%\n",
			nodes, res.Makespan, res.Expanded, res.Messages, 100*res.Efficiency(nodes))
	}
	s, _, par, err := cluster.Speedup(m, cluster.ClusterConfig(16), 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedup T(1)/T(16) = %.2f", s)
	if s > 16 {
		fmt.Printf("  — super-linear, as the paper reports")
	}
	fmt.Printf("\n(virtual T(1) = %.0f, T(16) = %.0f)\n", t1, par.Makespan)
}
