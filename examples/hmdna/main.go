// hmdna: the paper's mtDNA scenario end to end — simulate mitochondrial
// DNA under a molecular clock, build the distance matrix, construct the
// tree with and without compact sets, and check how well the true
// phylogeny is recovered.
//
//	go run ./examples/hmdna [-n 26] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"evotree/internal/core"
	"evotree/internal/seqsim"
	"evotree/internal/tree"
)

func main() {
	n := flag.Int("n", 26, "species")
	seed := flag.Int64("seed", 7, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	ds, err := seqsim.Generate(rng, seqsim.Params{Species: *n})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d mtDNA sequences of %d sites\n", *n, len(ds.Sequences[0]))
	fmt.Printf("distance range: %.0f .. %.0f substitutions\n",
		ds.Matrix.MinOff(), ds.Matrix.MaxOff())

	with, err := core.Construct(ds.Matrix, core.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultOptions(4)
	opt.UseCompactSets = false
	opt.BB.MaxNodes = 2_000_000
	without, err := core.Construct(ds.Matrix, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s %14s\n", "", "cost", "time", "BBT expanded")
	fmt.Printf("%-22s %12.1f %12s %14d\n", "with compact sets",
		with.Cost, with.Elapsed.Round(1000).String(), with.Stats.Expanded)
	fmt.Printf("%-22s %12.1f %12s %14d\n", "without compact sets",
		without.Cost, without.Elapsed.Round(1000).String(), without.Stats.Expanded)
	fmt.Printf("cost gap: %.2f%% (paper: ≤ 1.5%% on 26 mtDNA species)\n",
		100*core.CostGap(with.Cost, without.Cost))
	fmt.Printf("compact sets found: %d\n", len(with.CompactSets))

	// How faithful is the reconstruction to the true simulated phylogeny?
	// Count triple disagreements between the built tree and the true tree.
	fmt.Printf("\ntriple agreement with the true phylogeny:\n")
	fmt.Printf("  with compact sets:    %.1f%%\n", 100*tripleAgreement(with.Tree, ds.TrueTree))
	fmt.Printf("  without compact sets: %.1f%%\n", 100*tripleAgreement(without.Tree, ds.TrueTree))
	fmt.Printf("\nNewick (with compact sets):\n%s\n", with.Tree.Newick())
}

// tripleAgreement is the fraction of species triples on which two trees
// agree about which pair is closest.
func tripleAgreement(a, b *tree.Tree) float64 {
	leaves := a.Leaves()
	agree, total := 0, 0
	for x := 0; x < len(leaves); x++ {
		for y := x + 1; y < len(leaves); y++ {
			for z := y + 1; z < len(leaves); z++ {
				i, j, k := leaves[x], leaves[y], leaves[z]
				if a.TreeTriple(i, j, k) == b.TreeTriple(i, j, k) {
					agree++
				}
				total++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
