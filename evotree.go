// Package evotree constructs evolutionary trees from distance matrices.
//
// It is a Go implementation of the technique of Yu, Chang, Yang, Zhou, Lin
// and Tang, "A Fast Technique for Constructing Evolutionary Tree with the
// Application of Compact Sets" (PaCT 2005, LNCS 3606) and of the parallel
// branch-and-bound system it builds on (Yu, Zhou, Lin, Tang, HPC-Asia
// 2005):
//
//   - exact Minimum Ultrametric Tree (MUT) construction by
//     branch-and-bound (Algorithm BBU of Wu, Chao and Tang), sequential
//     and parallel (master/slave over goroutines with two-level
//     global/local pool load balancing);
//   - the compact-set decomposition that splits a distance matrix into
//     several small matrices whose subtrees are built independently and
//     merged without losing the relations among species;
//   - the UPGMA/UPGMM and neighbor-joining heuristics, a molecular-clock
//     DNA workload simulator, and a deterministic virtual-cluster model
//     for reproducing the papers' speedup experiments.
//
// This package is a thin facade over the implementation packages; the
// types it returns are shared with them. Start with ParseMatrix or one of
// the generators, then Construct:
//
//	m, _ := evotree.ParseMatrixString(input)
//	res, _ := evotree.Construct(m, evotree.DefaultOptions(8))
//	fmt.Println(res.Tree.Newick(), res.Cost)
package evotree

import (
	"io"
	"log/slog"
	"math/rand"

	"evotree/internal/bb"
	"evotree/internal/bootstrap"
	"evotree/internal/compact"
	"evotree/internal/core"
	"evotree/internal/matrix"
	"evotree/internal/nj"
	"evotree/internal/obs"
	"evotree/internal/pbb"
	"evotree/internal/seqsim"
	"evotree/internal/tree"
	"evotree/internal/upgma"
)

// Core data types.
type (
	// Matrix is a symmetric distance matrix over named species.
	Matrix = matrix.Matrix
	// Tree is a rooted, edge-weighted, leaf-labeled ultrametric tree.
	Tree = tree.Tree
	// Options configure Construct; see DefaultOptions.
	Options = core.Options
	// Result is the outcome of Construct.
	Result = core.Result
	// CompactSet is one detected compact set (sorted species indices).
	CompactSet = compact.Set
	// Reduction selects the group-distance rule for the small matrices.
	Reduction = compact.Reduction
	// SearchOptions configure the underlying branch-and-bound.
	SearchOptions = bb.Options
	// SearchResult is the outcome of an exact search.
	SearchResult = bb.Result
	// SearchStats count the work a search performed.
	SearchStats = bb.Stats
	// PruneStats attribute every discarded search node to the rule that
	// killed it (bound, incumbent, 3-3, constraint, budget); see
	// SearchStats.Pruned and the accounting identity documented there.
	PruneStats = bb.PruneStats
	// FlightRecorder is a Probe keeping the last K telemetry events per
	// worker in fixed-size rings, dumped as JSON for post-hoc triage of
	// crashed or truncated searches. See NewFlightRecorder.
	FlightRecorder = obs.Recorder
	// MtDNAParams configure the molecular-clock workload simulator.
	MtDNAParams = seqsim.Params
	// MtDNADataset is one simulated mtDNA instance.
	MtDNADataset = seqsim.Dataset
	// Probe receives typed search telemetry (seed bound, UB improvements,
	// pool traffic, pipeline phases); set it on Options.Probe or
	// SearchOptions.Probe. See NewTracer and NewMetricsRegistry.
	Probe = obs.Probe
	// TelemetryEvent is one typed search event delivered to a Probe.
	TelemetryEvent = obs.Event
	// MetricsRegistry aggregates counters/gauges/histograms and renders
	// them in the Prometheus text format.
	MetricsRegistry = obs.Registry
)

// Reduction rules for the decomposition's small matrices. The paper
// evaluates MaximumReduction, the only rule that keeps the merged tree
// feasible (d_T ≥ M).
const (
	MaximumReduction = compact.Maximum
	MinimumReduction = compact.Minimum
	AverageReduction = compact.Average
)

// NewTracer returns a Probe that renders search events as structured
// slog records: the UB-convergence signal at Info, pool/worker traffic
// at Debug. A nil logger yields a nil (disabled) probe.
func NewTracer(l *slog.Logger) Probe { return obs.NewTracer(l) }

// NewMetricsRegistry returns an empty metrics registry; mount its
// Handler at GET /metrics and feed it search events via
// obs.NewSearchMetrics or the web server.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSearchMetrics returns a Probe that aggregates search events into
// counters and histograms on reg (searches, nodes expanded, UB
// improvements, pool traffic, subproblem timings).
func NewSearchMetrics(reg *MetricsRegistry) Probe { return obs.NewSearchMetrics(reg) }

// MultiProbe fans events out to several probes, dropping nils.
func MultiProbe(probes ...Probe) Probe { return obs.Multi(probes...) }

// NewFlightRecorder returns a flight-recorder Probe with the given
// stripe count and per-stripe ring capacity; NewFlightRecorder(16, 64)
// is a reasonable default. Wire it via Options.Probe (or MultiProbe) and
// dump with WriteJSON/DumpJSON after a failure or timeout.
func NewFlightRecorder(stripes, perStripe int) *FlightRecorder {
	return obs.NewRecorder(stripes, perStripe)
}

// NewMatrix returns an n×n zero matrix with synthetic species names.
func NewMatrix(n int) *Matrix { return matrix.New(n) }

// NewMatrixWithNames returns a zero matrix over the given species names.
func NewMatrixWithNames(names []string) (*Matrix, error) {
	return matrix.NewWithNames(names)
}

// ParseMatrix reads a matrix in the PHYLIP-like text format (header line
// with the species count, then one "name d1 ... dn" row per species).
func ParseMatrix(r io.Reader) (*Matrix, error) { return matrix.Parse(r) }

// ParseMatrixString is ParseMatrix over a string.
func ParseMatrixString(s string) (*Matrix, error) { return matrix.ParseString(s) }

// DefaultOptions is the paper's configuration: compact-set decomposition
// on, maximum matrices, exact branch-and-bound per subproblem, with the
// given number of parallel workers.
func DefaultOptions(workers int) Options { return core.DefaultOptions(workers) }

// Construct builds a (near-optimal, relation-preserving) ultrametric tree
// for m using the compact-set technique, or the plain exact search when
// opt.UseCompactSets is false.
func Construct(m *Matrix, opt Options) (*Result, error) { return core.Construct(m, opt) }

// SolveExact runs the sequential exact branch-and-bound (Algorithm BBU)
// and returns a Minimum Ultrametric Tree.
func SolveExact(m *Matrix, opt SearchOptions) (*SearchResult, error) {
	return bb.Solve(m, opt)
}

// DefaultSearchOptions enables the max–min relabeling and keeps the
// (lossy) 3-3 filters off, making the search exact.
func DefaultSearchOptions() SearchOptions { return bb.DefaultOptions() }

// SolveParallel runs the master/slave parallel branch-and-bound with the
// given number of worker goroutines. The returned cost always equals the
// sequential optimum.
func SolveParallel(m *Matrix, workers int) (*SearchResult, error) {
	res, err := pbb.Solve(m, pbb.DefaultOptions(workers))
	if err != nil {
		return nil, err
	}
	return &res.Result, nil
}

// CompactSets returns every non-trivial compact set of m: the subsets
// whose largest internal distance is smaller than every distance leaving
// the subset. They form a laminar family and appear as clades of any
// relation-faithful tree.
func CompactSets(m *Matrix) ([]CompactSet, error) { return compact.Find(m) }

// RelationPreserved verifies the paper's headline guarantee on a tree:
// every given compact set appears as a clade. It returns an error naming
// the first violated set.
func RelationPreserved(t *Tree, sets []CompactSet) error {
	return core.RelationPreserved(t, sets)
}

// UPGMM builds the maximum-linkage (complete-linkage) heuristic tree —
// always a feasible ultrametric tree, hence a valid upper bound for the
// MUT problem — and returns it with its cost.
func UPGMM(m *Matrix) (*Tree, float64) { return upgma.UPGMM(m) }

// UPGMA builds the classic average-linkage heuristic tree.
func UPGMA(m *Matrix) *Tree { return upgma.UPGMA(m) }

// NeighborJoining runs the Saitou–Nei baseline and returns the additive
// tree distance function it implies: dist(i, j) is the path length between
// species i and j.
func NeighborJoining(m *Matrix) (dist func(i, j int) float64, err error) {
	t, err := nj.Build(m)
	if err != nil {
		return nil, err
	}
	return t.PathDist, nil
}

// GenerateMtDNA simulates one mtDNA-like dataset: DNA sequences evolved
// under a Jukes–Cantor molecular clock along a random coalescent tree,
// with the pairwise Hamming-distance matrix (an integer metric).
func GenerateMtDNA(rng *rand.Rand, p MtDNAParams) (*MtDNADataset, error) {
	return seqsim.Generate(rng, p)
}

// RandomMatrix returns an n-species metric with integer distances in
// [lo, hi] (repaired by metric closure when hi > 2·lo).
func RandomMatrix(rng *rand.Rand, n, lo, hi int) *Matrix {
	return matrix.RandomMetric(rng, n, lo, hi)
}

// CountTopologies returns A(n), the number of rooted binary leaf-labeled
// topologies over n species — the size of the exact search space.
func CountTopologies(n int) float64 { return bb.CountTopologies(n) }

// ParseNewick parses a binary, ultrametric Newick string (with branch
// lengths) into a Tree; tol bounds the acceptable deviation among
// root-to-leaf path lengths.
func ParseNewick(s string, tol float64) (*Tree, error) { return tree.ParseNewick(s, tol) }

// Sequence I/O and bootstrap analysis.
type (
	// FastaRecord is one named, aligned DNA sequence.
	FastaRecord = seqsim.Record
	// BootstrapOptions configure Bootstrap.
	BootstrapOptions = bootstrap.Options
	// BootstrapResult carries the reference tree and per-clade support.
	BootstrapResult = bootstrap.Result
)

// ReadFASTA parses aligned DNA sequences in FASTA format.
func ReadFASTA(r io.Reader) ([]FastaRecord, error) { return seqsim.ReadFASTA(r) }

// WriteFASTA writes records in FASTA format.
func WriteFASTA(w io.Writer, records []FastaRecord) error {
	return seqsim.WriteFASTA(w, records)
}

// MatrixFromSequences builds the Hamming distance matrix over an
// alignment (sites with N in either sequence are skipped).
func MatrixFromSequences(records []FastaRecord) (*Matrix, error) {
	return seqsim.MatrixFromSequences(records)
}

// Bootstrap resamples alignment columns, rebuilds a tree per replicate
// with build, and annotates the reference tree's clades with support
// fractions (Felsenstein's bootstrap).
func Bootstrap(records []FastaRecord, build func(*Matrix) (*Tree, error),
	opt BootstrapOptions) (*BootstrapResult, error) {
	return bootstrap.Run(records, build, opt)
}
