// Integration tests spanning the whole pipeline: sequences → FASTA →
// distance matrix → compact sets → (parallel) branch-and-bound → merged
// tree → Newick, plus the three-engine cost agreement (sequential,
// goroutine-parallel, virtual cluster).
package evotree_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"evotree"
	"evotree/internal/bb"
	"evotree/internal/cluster"
	"evotree/internal/core"
	"evotree/internal/matrix"
	"evotree/internal/pbb"
	"evotree/internal/seqsim"
)

func TestPipelineSequencesToTree(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	ds, err := seqsim.Generate(rng, seqsim.Params{Species: 14, SeqLen: 200, Rate: 0.8})
	if err != nil {
		t.Fatal(err)
	}

	// FASTA round trip reproduces the distance matrix exactly.
	var buf bytes.Buffer
	if err := seqsim.WriteFASTA(&buf, ds.Records()); err != nil {
		t.Fatal(err)
	}
	records, err := seqsim.ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := seqsim.MatrixFromSequences(records)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != ds.Matrix.String() {
		t.Fatal("FASTA round trip changed the matrix")
	}

	// Construct with the paper's technique.
	res, err := core.Construct(m, core.DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	if !res.Tree.Feasible(m, 1e-9) {
		t.Fatal("merged tree infeasible")
	}
	if err := core.RelationPreserved(res.Tree, res.CompactSets); err != nil {
		t.Fatal(err)
	}

	// The tree's cophenetic matrix dominates the input and correlates
	// positively with it on clock-like data.
	induced := m.InducedFromTree(res.Tree.Dist)
	if got := m.Stretch(induced); got < 0 {
		t.Fatalf("negative stretch %g for a dominating tree", got)
	}
	if corr := m.CopheneticCorrelation(induced); corr < 0.5 {
		t.Fatalf("cophenetic correlation %g suspiciously low", corr)
	}

	// Newick round trip preserves cost and leaf count.
	back, err := evotree.ParseNewick(res.Tree.Newick(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if back.LeafCount() != 14 || math.Abs(back.Cost()-res.Cost) > 1e-6*res.Cost {
		t.Fatalf("Newick round trip: %d leaves, cost %g vs %g",
			back.LeafCount(), back.Cost(), res.Cost)
	}
}

func TestThreeEnginesAgree(t *testing.T) {
	// The sequential solver, the goroutine engine and the virtual cluster
	// replay the same search and must agree on the optimum.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 5; trial++ {
		var m *matrix.Matrix
		if trial%2 == 0 {
			m = matrix.Random0100(rng, 9+trial)
		} else {
			m = matrix.PerturbedUltrametric(rng, 9+trial, 100, 0.2)
		}
		seq, err := bb.Solve(m, bb.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		par, err := pbb.Solve(m, pbb.DefaultOptions(5))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cluster.Simulate(m, cluster.ClusterConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Cost-par.Cost) > 1e-9 || math.Abs(seq.Cost-sim.Cost) > 1e-9 {
			t.Fatalf("trial %d: engines disagree: bb %g, pbb %g, cluster %g",
				trial, seq.Cost, par.Cost, sim.Cost)
		}
	}
}

func TestDecompositionScalesWhereExactCannot(t *testing.T) {
	// A 40-species blocked instance is far beyond any exact search, but
	// the decomposition handles it because every block is small. This is
	// the paper's whole point.
	rng := rand.New(rand.NewSource(102))
	n := 40
	m := matrix.New(n)
	group := make([]int, n)
	for i := range group {
		group[i] = i / 8 // five blocks of eight
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if group[i] == group[j] {
				m.Set(i, j, float64(25+rng.Intn(26)))
			} else {
				m.Set(i, j, float64(60+rng.Intn(16)))
			}
		}
	}
	opt := core.DefaultOptions(4)
	opt.BB.MaxNodes = 500_000
	res, err := core.Construct(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Tree.Leaves()); got != n {
		t.Fatalf("%d leaves", got)
	}
	if !res.Tree.Feasible(m, 1e-9) {
		t.Fatal("infeasible")
	}
	if len(res.CompactSets) < 5 {
		t.Fatalf("expected ≥ 5 compact sets (the blocks), got %d", len(res.CompactSets))
	}
	if err := core.RelationPreserved(res.Tree, res.CompactSets); err != nil {
		t.Fatal(err)
	}
}

func TestExactSearchRefusesOversizedInput(t *testing.T) {
	m := matrix.New(70)
	if _, err := bb.Solve(m, bb.DefaultOptions()); err == nil {
		t.Fatal("want error beyond MaxSpecies")
	}
}
